"""Topology-aware communication subsystem: spec grammar, the node/rack
model, the ChainerMN-style strategy registry, the hierarchical two-level
metering rules, and — the load-bearing guarantee — flat vs hierarchical
bit-identity of results and communication records on every backend."""

import numpy as np
import pytest

from repro.core import PulpParams, xtrapulp
from repro.graph import generators
from repro.simmpi import run_spmd
from repro.simmpi.topology import (
    COMM_ENV_VAR,
    COUNT_WIRE_BYTES,
    DEFAULT_COMM,
    DEFAULT_RANKS_PER_NODE,
    FlatCommunicator,
    HierarchicalCommunicator,
    Topology,
    available_communicators,
    create_communicator,
    default_comm,
    make_topology,
    parse_comm_spec,
)

BACKENDS = ("serial", "threads", "procs")

backends = pytest.mark.parametrize("backend", BACKENDS)


# -- spec grammar ------------------------------------------------------------

def test_parse_comm_spec_name_only():
    assert parse_comm_spec("flat") == ("flat", None, None)
    assert parse_comm_spec("hierarchical") == ("hierarchical", None, None)


def test_parse_comm_spec_ranks_per_node():
    assert parse_comm_spec("hierarchical:16") == ("hierarchical", 16, None)


def test_parse_comm_spec_full():
    assert parse_comm_spec("hierarchical:8x4") == ("hierarchical", 8, 4)


@pytest.mark.parametrize("bad", [
    "", ":8", "hierarchical:", "hierarchical:abc", "hierarchical:8x",
    "hierarchical:8xq", "hierarchical:0", "hierarchical:8x0",
    "hierarchical:-2",
])
def test_parse_comm_spec_rejects_malformed(bad):
    with pytest.raises(ValueError):
        parse_comm_spec(bad)


def test_parse_comm_spec_rejects_non_string():
    with pytest.raises(ValueError):
        parse_comm_spec(None)


# -- topology model ----------------------------------------------------------

def test_topology_node_grouping():
    t = Topology(nprocs=10, ranks_per_node=4)
    assert t.n_nodes == 3  # 4 + 4 + 2
    assert t.multi_node
    assert t.max_node_size == 4
    assert [t.node_of(r) for r in range(10)] == [0, 0, 0, 0, 1, 1, 1, 1, 2, 2]
    assert t.node_size(2) == 2  # short last node
    assert t.leader_of(6) == 4
    assert t.is_leader(4) and not t.is_leader(5)
    assert t.same_node(4, 7) and not t.same_node(3, 4)


def test_topology_node_of_ranks_matches_scalar():
    t = Topology(nprocs=10, ranks_per_node=4)
    node_map = t.node_of_ranks()
    assert node_map.dtype == np.int32
    np.testing.assert_array_equal(
        node_map, [t.node_of(r) for r in range(10)])


def test_topology_rack_tier():
    t = Topology(nprocs=32, ranks_per_node=4, nodes_per_rack=2)
    assert t.has_racks
    assert t.n_racks == 4
    assert t.rack_of(0) == 0 and t.rack_of(8) == 1 and t.rack_of(31) == 3
    flat_racks = Topology(nprocs=32, ranks_per_node=4)
    assert not flat_racks.has_racks and flat_racks.n_racks == 1
    assert flat_racks.rack_of(31) == 0


def test_topology_validates():
    with pytest.raises(ValueError):
        Topology(nprocs=0, ranks_per_node=4)
    with pytest.raises(ValueError):
        Topology(nprocs=4, ranks_per_node=0)
    with pytest.raises(ValueError):
        Topology(nprocs=8, ranks_per_node=4).node_size(2)


def test_make_topology_defaults_and_clamps():
    assert make_topology(64).ranks_per_node == DEFAULT_RANKS_PER_NODE
    # a run smaller than one default node becomes a single full node
    tiny = make_topology(3)
    assert tiny.ranks_per_node == 3 and tiny.n_nodes == 1
    assert not tiny.multi_node


# -- registry / factory ------------------------------------------------------

def test_registry_lists_shipped_strategies():
    assert {"flat", "naive", "hierarchical"} <= set(available_communicators())


def test_create_by_name_and_spec():
    c = create_communicator("hierarchical:4", nprocs=16)
    assert isinstance(c, HierarchicalCommunicator)
    assert c.tiered
    assert c.topology.ranks_per_node == 4 and c.topology.n_nodes == 4
    f = create_communicator("flat", nprocs=16)
    assert isinstance(f, FlatCommunicator) and not f.tiered


def test_naive_is_flat_alias():
    assert isinstance(create_communicator("naive", nprocs=4),
                      FlatCommunicator)


def test_spec_suffix_wins_over_kwargs():
    c = create_communicator("hierarchical:4x2", nprocs=16,
                            ranks_per_node=8, nodes_per_rack=9)
    assert c.topology.ranks_per_node == 4
    assert c.topology.nodes_per_rack == 2


def test_default_is_flat(monkeypatch):
    monkeypatch.delenv(COMM_ENV_VAR, raising=False)
    assert default_comm() == DEFAULT_COMM == "flat"
    assert isinstance(create_communicator(None, nprocs=4), FlatCommunicator)


def test_env_override_honored(monkeypatch):
    monkeypatch.setenv(COMM_ENV_VAR, "hierarchical:2")
    assert default_comm() == "hierarchical:2"
    c = create_communicator(None, nprocs=4)
    assert isinstance(c, HierarchicalCommunicator)
    assert c.topology.ranks_per_node == 2
    monkeypatch.delenv(COMM_ENV_VAR)
    assert default_comm() == "flat"


def test_unknown_strategy_raises_with_choices():
    with pytest.raises(ValueError, match="hierarchical") as exc:
        create_communicator("smoke-signals", nprocs=4)
    assert "smoke-signals" in str(exc.value)
    assert "flat" in str(exc.value)


def test_instance_passthrough_checks_nprocs():
    c = create_communicator("hierarchical:2", nprocs=4)
    assert create_communicator(c, nprocs=4) is c
    with pytest.raises(ValueError, match="nprocs|ranks"):
        create_communicator(c, nprocs=8)


# -- hierarchical metering rules ---------------------------------------------

def _hier(nprocs, rpn):
    return create_communicator(f"hierarchical:{rpn}", nprocs=nprocs)


def test_dest_split_is_sum_preserving():
    c = _hier(8, 4)  # nodes {0..3}, {4..7}
    dest = np.array([0, 10, 20, 30, 40, 50, 60, 70], dtype=np.int64)
    intra, inter, wire_intra, wire_inter = c.tier_contribution(
        "alltoallv", 0, int(dest.sum()), dest_bytes=dest)
    assert intra == 10 + 20 + 30
    assert inter == 40 + 50 + 60 + 70
    assert intra + inter == dest.sum()
    # payload exchange ships the off-node bytes on the network unchanged
    assert wire_inter == inter


def test_dest_wire_legs():
    c = _hier(8, 4)
    dest = np.full(8, 100, dtype=np.int64)
    dest[1] = 0  # self slot zeroed by the caller
    # rank 1 (non-leader): local delivery (200 to ranks 0,2... minus self)
    # + gather-to-leader of its 400 inter bytes + remote scatter of the
    # 300 off-node bytes not addressed to the remote leader (rank 4)
    intra, inter, wire_intra, _ = c.tier_contribution(
        "alltoallv", 1, int(dest.sum()), dest_bytes=dest)
    assert (intra, inter) == (300, 400)
    assert wire_intra == 300 + 400 + 300
    # the leader skips the gather leg
    dest0 = np.full(8, 100, dtype=np.int64)
    dest0[0] = 0
    intra0, inter0, wire_intra0, _ = c.tier_contribution(
        "alltoallv", 0, int(dest0.sum()), dest_bytes=dest0)
    assert (intra0, inter0) == (300, 400)
    assert wire_intra0 == 300 + 300


def test_count_headers_reencoded_uint32():
    c = _hier(8, 4)
    dest = np.full(8, 8, dtype=np.int64)  # int64 count slots per dest
    dest[0] = 0
    _, _, _, wire_inter = c.tier_contribution(
        "alltoall", 0, int(dest.sum()), dest_bytes=dest, counts=True)
    # 4 off-node destinations (ranks 4-7) at 4 wire bytes each, instead of
    # the 4 * 8 int64 bytes the flat exchange would ship
    assert wire_inter == 4 * COUNT_WIRE_BYTES
    assert wire_inter < int(dest[4:].sum())


def test_reduce_leaders_only():
    c = _hier(8, 4)
    b = 64
    # non-leader: reduces onto its leader over shared memory
    assert c.tier_contribution("allreduce", 1, b) == (b, 0, b, 0)
    # leader: injects one value inter-node, fans the result back down
    assert c.tier_contribution("allreduce", 0, b) == (0, b, b, b)
    # single node: everything is intra
    single = _hier(4, 4)
    assert single.tier_contribution("allreduce", 0, b) == (b, 0, b, 0)


def test_reduce_inter_wire_is_leaders_count():
    """The hierarchical-allreduce saving: n_nodes contributions cross the
    network instead of nprocs."""
    c = _hier(16, 8)
    b = 8
    wire_inter = sum(
        c.tier_contribution("allreduce", r, b)[3] for r in range(16))
    assert wire_inter == c.topology.n_nodes * b  # 2*8, not 16*8


def test_concat_all_inter_on_multi_node():
    c = _hier(8, 4)
    intra, inter, wire_intra, wire_inter = c.tier_contribution(
        "allgatherv", 1, 32)
    assert (intra, inter) == (0, 32)
    assert wire_intra == 32 and wire_inter == 32  # local gather leg


def test_bcast_classified_by_root():
    c = _hier(8, 4)
    assert c.tier_contribution("bcast", 1, 64, root=0) == (0, 0, 0, 0)
    assert c.tier_contribution("bcast", 0, 64, root=0) == (0, 64, 64, 64)
    single = _hier(4, 4)
    assert single.tier_contribution("bcast", 0, 64, root=0) == (64, 0, 64, 0)


def test_gather_classified_by_root_node():
    c = _hier(8, 4)
    # same node as root: shared-memory delivery
    assert c.tier_contribution("gatherv", 2, 16, root=0) == (16, 0, 16, 0)
    # off-node non-leader: stages through its leader
    assert c.tier_contribution("gatherv", 5, 16, root=0) == (0, 16, 16, 16)
    # off-node leader: injects directly
    assert c.tier_contribution("gatherv", 4, 16, root=0) == (0, 16, 0, 16)


def test_checkpoint_always_inter():
    c = _hier(8, 4)
    single = _hier(4, 4)
    assert c.tier_contribution("checkpoint", 1, 128)[:2] == (0, 128)
    assert single.tier_contribution("checkpoint", 0, 128)[:2] == (0, 128)


def test_unknown_op_conservatively_inter():
    c = _hier(8, 4)
    assert c.tier_contribution("teleport", 3, 9) == (0, 9, 0, 9)
    single = _hier(4, 4)
    assert single.tier_contribution("teleport", 3, 9) == (9, 0, 9, 0)


def test_hops_structure():
    c = _hier(32, 8)  # 4 nodes x 8
    assert c.hops("alltoallv") == (3 * 7, 3)  # gather+exchange+scatter, n-1
    assert c.hops("allreduce") == (2 * 3, 2)  # up+down log2(8), log2(4)
    single = _hier(8, 8)
    assert single.hops("alltoallv") == (7, 0)  # degenerates to flat
    assert single.hops("allreduce") == (3, 0)


# -- cross-strategy bit-identity ---------------------------------------------

def _workout(comm):
    """Touch every collective family with rank-dependent data."""
    rank, size = comm.rank, comm.size
    rng = np.random.default_rng(rank)
    cts = rng.integers(0, 5, size=size).astype(np.int64)
    cts[rank] = 0
    payload = np.arange(int(cts.sum()), dtype=np.int64) + 100 * rank
    recv, rcts = comm.Alltoallv(payload, cts)
    total = comm.allreduce(int(recv.sum()))
    gathered = comm.allgather(rank * rank)
    top = comm.bcast(total if rank == 0 else None, root=0)
    return total, tuple(gathered), top, int(rcts.sum())


@backends
def test_flat_vs_hierarchical_bit_identical(backend):
    out_f, st_f = run_spmd(8, _workout, backend=backend,
                           meter_compute=False, comm="flat")
    out_h, st_h = run_spmd(8, _workout, backend=backend,
                           meter_compute=False, comm="hierarchical:4")
    assert out_f == out_h
    assert st_f.signature() == st_h.signature()
    assert not st_f.tiered
    assert st_h.tiered


@backends
def test_tier_split_sums_to_bytes_sent(backend):
    _, st = run_spmd(8, _workout, backend=backend,
                     meter_compute=False, comm="hierarchical:4")
    tiered_events = [e for e in st.events if e.tiers is not None]
    assert tiered_events
    for e in tiered_events:
        np.testing.assert_array_equal(
            e.tiers.intra_bytes + e.tiers.inter_bytes, e.bytes_sent)
    # and the per-op rollup agrees with the untiered byte totals
    by_op = st.bytes_by_op()
    for op, (intra, inter) in st.tier_bytes_by_op().items():
        assert intra + inter == by_op[op]


@backends
def test_hierarchical_cuts_modeled_inter_bytes(backend):
    _, st_f = run_spmd(8, _workout, backend=backend,
                       meter_compute=False, comm="flat")
    _, st_h = run_spmd(8, _workout, backend=backend,
                       meter_compute=False, comm="hierarchical:4")
    assert st_f.modeled_inter_bytes() == st_f.total_bytes
    assert st_h.modeled_inter_bytes() < st_f.modeled_inter_bytes()
    assert st_h.modeled_intra_bytes() > 0


def test_single_rank_run_has_no_tiers():
    out, st = run_spmd(1, lambda comm: comm.allreduce(1),
                       comm="hierarchical:4")
    assert out == [1]
    assert not st.tiered


@backends
def test_zero_length_contributions_stay_dtype_exempt(backend):
    """The dtype guard's zero-length exemption must survive the
    hierarchical metering path (which inspects per-destination counts)."""
    def fn(comm):
        if comm.rank == 0:
            send = np.arange(1, comm.size, dtype=np.int32)
            cts = np.ones(comm.size, dtype=np.int64)
            cts[0] = 0
        else:
            send = np.empty(0, dtype=np.float64)  # idle, different dtype
            cts = np.zeros(comm.size, dtype=np.int64)
        recv, _ = comm.Alltoallv(send, cts)
        return recv.dtype.str, recv.tolist()

    out, st = run_spmd(4, fn, backend=backend, meter_compute=False,
                       comm="hierarchical:2")
    assert out[1] == ("<i4", [1])
    assert st.tiered


# -- end-to-end: xtrapulp under both strategies ------------------------------

@pytest.fixture(scope="module")
def small_rmat():
    return generators.rmat(8, avg_degree=8, seed=7)


@backends
def test_xtrapulp_partition_invariant_under_comm(small_rmat, backend):
    flat = xtrapulp(small_rmat, 4, nprocs=4,
                    params=PulpParams(seed=123, comm="flat"),
                    backend=backend)
    hier = xtrapulp(small_rmat, 4, nprocs=4,
                    params=PulpParams(seed=123, comm="hierarchical:2"),
                    backend=backend)
    np.testing.assert_array_equal(flat.parts, hier.parts)
    assert flat.stats.signature() == hier.stats.signature()
    assert flat.comm == "flat" and hier.comm == "hierarchical"
    assert not flat.stats.tiered
    assert hier.stats.tiered


def test_xtrapulp_honors_comm_env(small_rmat, monkeypatch):
    monkeypatch.setenv(COMM_ENV_VAR, "hierarchical:2")
    res = xtrapulp(small_rmat, 4, nprocs=4, params=PulpParams(seed=123),
                   backend="serial")
    assert res.comm == "hierarchical"
    assert res.stats.tiered


def test_params_validate_comm_spec():
    PulpParams(comm="hierarchical:8x4")  # grammar ok, lazy name check
    with pytest.raises(ValueError):
        PulpParams(comm="hierarchical:0")
