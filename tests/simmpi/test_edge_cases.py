"""Collective edge cases and misuse diagnostics."""

import numpy as np
import pytest

from repro.simmpi import Runtime, run_spmd
from repro.simmpi.errors import CollectiveMismatchError


def test_scatter_validates_item_count():
    def fn(comm):
        objs = [1] if comm.rank == 0 else None  # wrong length at root
        return comm.scatter(objs, root=0)

    with pytest.raises(ValueError, match="exactly"):
        run_spmd(2, fn)


def test_scatterv_validates_counts_sum():
    def fn(comm):
        if comm.rank == 0:
            return comm.Scatterv(np.arange(5.0), np.array([1, 1]), root=0)
        return comm.Scatterv(None, None, root=0)

    with pytest.raises(ValueError, match="sum"):
        run_spmd(2, fn)


def test_scatterv_requires_payload_at_root():
    def fn(comm):
        return comm.Scatterv(None, None, root=0)

    with pytest.raises(ValueError, match="root"):
        run_spmd(2, fn)


def test_allgatherv_requires_1d():
    def fn(comm):
        comm.Allgatherv(np.zeros((2, 2)))

    with pytest.raises(ValueError, match="1-D"):
        run_spmd(2, fn)


def test_alltoall_requires_leading_dim():
    def fn(comm):
        comm.Alltoall(np.zeros(comm.size + 1))

    with pytest.raises(ValueError, match="leading dim"):
        run_spmd(2, fn)


def test_mismatch_error_names_both_ops():
    def fn(comm):
        if comm.rank == 0:
            comm.allreduce(1)
        else:
            comm.barrier()

    with pytest.raises(CollectiveMismatchError) as err:
        run_spmd(2, fn)
    msg = str(err.value)
    assert "allreduce" in msg and "barrier" in msg


def test_nonroot_gather_returns_none_and_bytes_charged_to_senders():
    def fn(comm):
        return comm.gather({"rank": comm.rank}, root=1)

    out, stats = run_spmd(3, fn)
    assert out[0] is None and out[2] is None
    assert out[1] == [{"rank": r} for r in range(3)]
    (event,) = stats.events
    assert event.bytes_sent[1] == 0  # root sends nothing
    assert event.bytes_sent[0] > 0 and event.bytes_sent[2] > 0


def test_empty_alltoallv():
    def fn(comm):
        recv, counts = comm.Alltoallv(
            np.empty(0, dtype=np.int64), np.zeros(comm.size, dtype=np.int64)
        )
        return recv.size, counts.sum()

    out, _ = run_spmd(3, fn)
    assert out == [(0, 0)] * 3


def test_mixed_dtypes_across_alltoallv_calls():
    def fn(comm):
        a, _ = comm.Alltoallv(
            np.ones(comm.size, dtype=np.float64),
            np.ones(comm.size, dtype=np.int64),
        )
        b, _ = comm.Alltoallv(
            np.ones(comm.size, dtype=np.int32),
            np.ones(comm.size, dtype=np.int64),
        )
        return a.dtype.kind, b.dtype.kind

    out, _ = run_spmd(2, fn)
    assert out == [("f", "i")] * 2


def test_reduce_ops_min_max():
    def fn(comm):
        lo = comm.Reduce(np.array([comm.rank]), op="min", root=0)
        hi = comm.Reduce(np.array([comm.rank]), op="max", root=0)
        return lo, hi

    out, _ = run_spmd(4, fn)
    np.testing.assert_array_equal(out[0][0], [0])
    np.testing.assert_array_equal(out[0][1], [3])


def test_stats_accumulate_across_runs_of_same_runtime():
    rt = Runtime(2)
    rt.run(lambda comm: comm.barrier())
    first = rt.stats.rounds
    rt.run(lambda comm: comm.barrier())
    assert rt.stats.rounds == first + 1
