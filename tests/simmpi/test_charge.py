"""Deterministic work charging through the comm layer."""

import numpy as np
import pytest

from repro.simmpi import MachineModel, Runtime, TimeModel, run_spmd


def test_charge_attaches_to_next_collective():
    def fn(comm):
        comm.charge(100 * (comm.rank + 1))
        comm.barrier()
        comm.barrier()  # no charge in between

    _, stats = run_spmd(3, fn)
    first, second = stats.events
    np.testing.assert_array_equal(first.work_units, [100, 200, 300])
    np.testing.assert_array_equal(second.work_units, [0, 0, 0])
    assert first.max_work == 300


def test_charge_accumulates_within_superstep():
    def fn(comm):
        comm.charge(5)
        comm.charge(7)
        comm.barrier()

    _, stats = run_spmd(2, fn)
    assert stats.events[0].max_work == 12


def test_gamma_prices_work():
    def fn(comm):
        comm.charge(1000)
        comm.barrier()

    _, stats = run_spmd(2, fn, meter_compute=False)
    model = TimeModel(MachineModel(alpha=0.0, beta=0.0, gamma=1e-3))
    assert model.total_time(stats) == pytest.approx(1.0)


def test_work_in_breakdown():
    def fn(comm):
        comm.charge(500)
        comm.allreduce(1)

    _, stats = run_spmd(2, fn, meter_compute=False)
    model = TimeModel(MachineModel(alpha=1e-6, beta=1e-9, gamma=2e-6))
    b = model.breakdown(stats)
    assert b["work"] == pytest.approx(2e-6 * 500)
    assert b["total"] == pytest.approx(
        b["work"] + b["compute"] + b["latency"] + b["bandwidth"]
    )


def test_charge_single_rank():
    def fn(comm):
        comm.charge(42)
        comm.barrier()

    _, stats = run_spmd(1, fn)
    assert stats.events[0].max_work == 42


def test_charged_runs_are_deterministic():
    def fn(comm):
        rng = np.random.default_rng(comm.rank)
        data = rng.random(1000)
        comm.charge(data.size)
        total = comm.Allreduce(data)
        return float(total.sum())

    model = TimeModel(MachineModel(alpha=1e-6, beta=1e-9, gamma=4e-9))
    times = []
    for _ in range(3):
        out, stats = run_spmd(4, fn, meter_compute=False)
        times.append(model.total_time(stats))
    assert times[0] == times[1] == times[2]
