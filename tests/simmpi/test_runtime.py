"""Runtime semantics: error propagation, deadlock detection, determinism."""

import numpy as np
import pytest

from repro.simmpi import (
    CollectiveMismatchError,
    DeadlockError,
    Runtime,
    run_spmd,
)


def test_single_rank_runs_inline():
    def fn(comm):
        assert comm.size == 1 and comm.rank == 0
        comm.barrier()
        return comm.allreduce(5)

    out, stats = run_spmd(1, fn)
    assert out == [5]
    assert stats.rounds == 2


def test_rank_args():
    def fn(comm, bonus):
        return comm.rank + bonus

    rt = Runtime(3)
    out = rt.run(fn, rank_args=[(10,), (20,), (30,)])
    assert out == [10, 21, 32]


def test_rank_args_length_checked():
    rt = Runtime(3)
    with pytest.raises(ValueError, match="rank_args"):
        rt.run(lambda comm: None, rank_args=[(1,)])


def test_shared_args_and_kwargs():
    def fn(comm, a, b=0):
        return a + b + comm.rank

    out = Runtime(2).run(fn, 5, b=7)
    assert out == [12, 13]


def test_exception_propagates_to_caller():
    def fn(comm):
        if comm.rank == 1:
            raise RuntimeError("boom on rank 1")
        comm.barrier()

    with pytest.raises(RuntimeError, match="boom on rank 1"):
        run_spmd(3, fn)


def test_exception_before_any_collective():
    def fn(comm):
        raise ValueError("instant failure")

    with pytest.raises(ValueError, match="instant failure"):
        run_spmd(2, fn)


def test_collective_mismatch_detected():
    def fn(comm):
        if comm.rank == 0:
            comm.barrier()
        else:
            comm.allreduce(1)

    with pytest.raises(CollectiveMismatchError):
        run_spmd(2, fn)


def test_deadlock_when_one_rank_returns_early():
    def fn(comm):
        if comm.rank == 0:
            return "done early"
        comm.barrier()

    with pytest.raises(DeadlockError):
        run_spmd(2, fn)


def test_deadlock_when_rank_enters_extra_collective():
    def fn(comm):
        comm.barrier()
        if comm.rank == 0:
            comm.barrier()  # others never join

    with pytest.raises(DeadlockError):
        run_spmd(3, fn)


def test_deterministic_results_across_runs():
    def fn(comm):
        rng = np.random.default_rng(comm.rank)
        local = rng.random(100)
        total = comm.Allreduce(local, op="sum")
        merged, _ = comm.Allgatherv(local)
        return float(total.sum()), float(merged.sum())

    first, _ = run_spmd(4, fn)
    second, _ = run_spmd(4, fn)
    assert first == second


def test_runtime_reusable_after_success():
    rt = Runtime(2)
    out1 = rt.run(lambda comm: comm.allreduce(1))
    out2 = rt.run(lambda comm: comm.allreduce(2))
    assert out1 == [2, 2] and out2 == [4, 4]
    assert rt.stats.rounds == 2  # stats accumulate across runs


def test_invalid_nprocs_rejected():
    with pytest.raises(ValueError):
        Runtime(0)


def test_many_ranks():
    def fn(comm):
        return comm.allreduce(comm.rank, op="sum")

    out, _ = run_spmd(32, fn)
    assert out == [sum(range(32))] * 32


def test_compute_metering_disabled():
    def fn(comm):
        comm.barrier()

    _, stats = run_spmd(2, fn, meter_compute=False)
    assert stats.events[0].compute_seconds.sum() == 0.0
