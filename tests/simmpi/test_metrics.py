"""Byte-accounting conventions and CommStats aggregation."""

import numpy as np
import pytest

from repro.simmpi import CommStats, CollectiveEvent, run_spmd
from repro.simmpi.metrics import CollectiveEvent as CE


def _event(op="barrier", tag="", nbytes=(0, 0), compute=(0.0, 0.0)):
    return CE(
        op=op,
        tag=tag,
        bytes_sent=np.array(nbytes, dtype=np.int64),
        compute_seconds=np.array(compute, dtype=np.float64),
    )


def test_event_properties():
    e = _event(nbytes=(10, 30), compute=(0.5, 0.2))
    assert e.total_bytes == 40
    assert e.max_bytes == 30
    assert e.max_compute == 0.5


def test_stats_aggregation():
    s = CommStats(2)
    s.record(_event(op="bcast", tag="a", nbytes=(8, 0)))
    s.record(_event(op="alltoallv", tag="b", nbytes=(16, 24)))
    s.record(_event(op="bcast", tag="a", nbytes=(4, 0)))
    assert s.rounds == 3
    assert s.total_bytes == 52
    assert s.bytes_by_op() == {"bcast": 12, "alltoallv": 40}
    assert s.rounds_by_op() == {"bcast": 2, "alltoallv": 1}
    assert s.bytes_by_tag() == {"a": 12, "b": 40}
    np.testing.assert_array_equal(s.per_rank_bytes(), [28, 24])


def test_filtered_view():
    s = CommStats(2)
    s.record(_event(tag="keep", nbytes=(8, 8)))
    s.record(_event(tag="drop", nbytes=(100, 100)))
    sub = s.filtered(["keep"])
    assert sub.total_bytes == 16
    assert s.total_bytes == 216  # original untouched


def test_merge_checks_nprocs():
    a, b = CommStats(2), CommStats(3)
    with pytest.raises(ValueError):
        a.merge(b)


def test_merge_appends():
    a, b = CommStats(2), CommStats(2)
    a.record(_event())
    b.record(_event())
    a.merge(b)
    assert a.rounds == 2


def test_bcast_bytes_charged_to_root_only():
    def fn(comm):
        arr = np.zeros(100, dtype=np.float64) if comm.rank == 1 else np.empty(100)
        comm.Bcast(arr, root=1)

    _, stats = run_spmd(3, fn)
    (event,) = stats.events
    np.testing.assert_array_equal(event.bytes_sent, [0, 800, 0])


def test_alltoall_excludes_self_slot():
    def fn(comm):
        comm.Alltoall(np.zeros(comm.size, dtype=np.int64))

    _, stats = run_spmd(4, fn)
    (event,) = stats.events
    # 4 slots of 8 bytes each, minus the self slot
    np.testing.assert_array_equal(event.bytes_sent, [24] * 4)


def test_alltoallv_offrank_bytes_exact():
    def fn(comm):
        # send 2 items to every rank including self
        counts = np.full(comm.size, 2, dtype=np.int64)
        buf = np.zeros(2 * comm.size, dtype=np.int64)
        comm.Alltoallv(buf, counts)

    _, stats = run_spmd(3, fn)
    counts_event, payload_event = stats.events
    assert counts_event.op == "alltoall"
    assert payload_event.op == "alltoallv"
    # 6 items * 8 bytes minus self-directed 2 * 8
    np.testing.assert_array_equal(payload_event.bytes_sent, [32] * 3)


def test_barrier_is_free():
    def fn(comm):
        comm.barrier()

    _, stats = run_spmd(4, fn)
    assert stats.total_bytes == 0


def test_summary_smoke():
    _, stats = run_spmd(2, lambda comm: comm.allreduce(1))
    text = stats.summary()
    assert "allreduce" in text and "rounds" in text
