"""Cross-rank dtype consistency in Alltoallv (silent upcasts are bugs).

Zero-length contributions are dtype-exempt: a rank that injects no data
cannot cause an upcast, so an all-but-one-empty exchange must succeed even
when the idle ranks passed buffers of a different dtype — the regression
every backend is held to below.
"""

import numpy as np
import pytest

from repro.simmpi import run_spmd

BACKENDS = ("serial", "threads", "procs")

backends = pytest.mark.parametrize("backend", BACKENDS)


def test_alltoallv_dtype_mismatch_raises():
    def fn(comm):
        dtype = np.float64 if comm.rank == 0 else np.int64
        comm.Alltoallv(
            np.ones(comm.size, dtype=dtype),
            np.ones(comm.size, dtype=np.int64),
        )

    with pytest.raises(ValueError, match="dtype mismatch"):
        run_spmd(2, fn)


def test_alltoallv_consistent_dtype_ok():
    def fn(comm):
        recv, _ = comm.Alltoallv(
            np.full(comm.size, comm.rank, dtype=np.int32),
            np.ones(comm.size, dtype=np.int64),
        )
        return recv.dtype == np.int32

    out, _ = run_spmd(3, fn)
    assert all(out)


@backends
def test_alltoallv_empty_contributions_dtype_exempt(backend):
    """All-but-one-empty exchange: idle ranks contribute zero-length
    buffers of the *wrong* dtype; no data of theirs moves, so the exchange
    must succeed and deliver rank 0's payload in rank 0's dtype."""

    def fn(comm):
        if comm.rank == 0:
            buf = np.arange(3 * comm.size, dtype=np.float64)
            counts = np.full(comm.size, 3, dtype=np.int64)
        else:
            buf = np.empty(0, dtype=np.int64)  # differs from rank 0's
            counts = np.zeros(comm.size, dtype=np.int64)
        recv, rcounts = comm.Alltoallv(buf, counts)
        return recv.dtype, recv.copy(), rcounts.copy()

    out, _ = run_spmd(3, fn, backend=backend, meter_compute=False)
    for rank, (dtype, recv, rcounts) in enumerate(out):
        assert dtype == np.float64
        np.testing.assert_array_equal(
            recv, np.arange(3, dtype=np.float64) + 3 * rank
        )
        np.testing.assert_array_equal(rcounts, [3, 0, 0])


@backends
def test_alltoallv_all_empty_keeps_own_dtype(backend):
    def fn(comm):
        recv, _ = comm.Alltoallv(
            np.empty(0, dtype=np.uint16), np.zeros(comm.size, dtype=np.int64)
        )
        return recv.dtype == np.uint16 and recv.size == 0

    out, _ = run_spmd(2, fn, backend=backend, meter_compute=False)
    assert all(out)


@backends
def test_alltoallv_fields_empty_contributions_dtype_exempt(backend):
    def fn(comm):
        if comm.rank == comm.size - 1:
            slots = np.arange(comm.size, dtype=np.uint16)
            parts = np.full(comm.size, 7, dtype=np.int16)
            counts = np.ones(comm.size, dtype=np.int64)
        else:
            slots = np.empty(0, dtype=np.int64)  # wrong dtypes, but empty
            parts = np.empty(0, dtype=np.float32)
            counts = np.zeros(comm.size, dtype=np.int64)
        (rslots, rparts), rcounts = comm.Alltoallv_fields(
            (slots, parts), counts
        )
        return rslots.copy(), rparts.copy(), rcounts.copy()

    out, _ = run_spmd(3, fn, backend=backend, meter_compute=False)
    for rank, (rslots, rparts, rcounts) in enumerate(out):
        assert rslots.dtype == np.uint16 and rparts.dtype == np.int16
        np.testing.assert_array_equal(rslots, [rank])
        np.testing.assert_array_equal(rparts, [7])
        np.testing.assert_array_equal(rcounts, [0, 0, 1])


def test_alltoallv_fields_nonempty_dtype_mismatch_raises():
    def fn(comm):
        dtype = np.int16 if comm.rank == 0 else np.int32
        comm.Alltoallv_fields(
            (np.ones(comm.size, dtype=dtype),),
            np.ones(comm.size, dtype=np.int64),
        )

    with pytest.raises(ValueError, match="dtype mismatch"):
        run_spmd(2, fn)
