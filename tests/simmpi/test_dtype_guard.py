"""Cross-rank dtype consistency in Alltoallv (silent upcasts are bugs)."""

import numpy as np
import pytest

from repro.simmpi import run_spmd


def test_alltoallv_dtype_mismatch_raises():
    def fn(comm):
        dtype = np.float64 if comm.rank == 0 else np.int64
        comm.Alltoallv(
            np.ones(comm.size, dtype=dtype),
            np.ones(comm.size, dtype=np.int64),
        )

    with pytest.raises(ValueError, match="dtype mismatch"):
        run_spmd(2, fn)


def test_alltoallv_consistent_dtype_ok():
    def fn(comm):
        recv, _ = comm.Alltoallv(
            np.full(comm.size, comm.rank, dtype=np.int32),
            np.ones(comm.size, dtype=np.int64),
        )
        return recv.dtype == np.int32

    out, _ = run_spmd(3, fn)
    assert all(out)
