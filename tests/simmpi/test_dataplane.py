"""Unit tests for the procs backend's zero-copy shm data plane.

Covers the pieces of :mod:`repro.simmpi.dataplane` in isolation (arenas,
segment cache, view ledger, copy-on-write helper), the slot wire format
that carries descriptors (:mod:`repro.simmpi.backends.procs`), the
``_sanitize_exc`` stand-in contract, and small end-to-end collective
programs on both data planes.
"""

import os
import pickle

import numpy as np
import pytest

from repro.simmpi import dataplane
from repro.simmpi.backends import create_runtime
from repro.simmpi.backends.procs import _Slot, _sanitize_exc, _sweep_shm
from repro.simmpi.errors import UnpicklableRankError

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="no /dev/shm on this platform"
)

BIG = dataplane.DESCRIPTOR_MIN  # smallest descriptor-eligible payload


@pytest.fixture
def prefix():
    """A unique arena/slot name prefix, swept clean afterwards."""
    name = f"simmpi0xdptest{os.getpid()}"
    yield name
    _sweep_shm(name)


# -- data-plane selection ----------------------------------------------------


def test_default_dataplane_honors_env(monkeypatch):
    monkeypatch.delenv(dataplane.DATAPLANE_ENV_VAR, raising=False)
    assert dataplane.default_dataplane() == "shm"
    monkeypatch.setenv(dataplane.DATAPLANE_ENV_VAR, "pickle")
    assert dataplane.default_dataplane() == "pickle"
    monkeypatch.setenv(dataplane.DATAPLANE_ENV_VAR, "zmq")
    with pytest.raises(ValueError, match="zmq"):
        dataplane.default_dataplane()


def test_backend_rejects_unknown_plane():
    with pytest.raises(ValueError, match="unknown data plane"):
        create_runtime("procs", nprocs=2, dataplane="carrier-pigeon")


def test_in_process_backends_reject_dataplane():
    with pytest.raises(ValueError, match="no data plane"):
        create_runtime("serial", nprocs=2, dataplane="shm")


# -- arenas ------------------------------------------------------------------


def test_send_arena_roundtrip_and_reset(prefix):
    arena = dataplane.SendArena(prefix + "dps0")
    cache = dataplane.SegmentCache()
    try:
        data = np.arange(BIG, dtype=np.uint8).tobytes()
        arena.begin_write(len(data))
        spec = arena.place(memoryview(data))
        assert spec.nbytes == len(data)
        assert bytes(cache.view(spec)) == data
        # reset: the next write reuses offset 0 of the same segment
        arena.begin_write(len(data))
        spec2 = arena.place(memoryview(data))
        assert (spec2.segment, spec2.offset) == (spec.segment, spec.offset)
    finally:
        cache.close()
        arena.close()


def test_send_arena_growth_replaces_generation(prefix):
    arena = dataplane.SendArena(prefix + "dps0")
    try:
        arena.begin_write(BIG)
        first = arena.place(memoryview(bytes(BIG))).segment
        arena.begin_write(64 << 20)  # force a larger generation
        second = arena.place(memoryview(bytes(64 << 20))).segment
        assert first != second
        # the replaced generation was unlinked immediately
        assert not os.path.exists(os.path.join("/dev/shm", first))
        assert os.path.exists(os.path.join("/dev/shm", second))
    finally:
        arena.close()


def test_result_arena_zero_copy_descriptor_for_own_blocks(prefix):
    arena = dataplane.ResultArena(prefix + "dpr")
    try:
        arena.begin_step(0, -1)
        arr = arena.alloc_array((BIG,), np.uint8)
        arr[:] = 7
        raw = pickle.PickleBuffer(arr).raw()
        spec = arena.place(raw)
        # arena-resident result: descriptor points at the existing block
        assert spec.segment in arena.segment_names
        seg_file = os.path.join("/dev/shm", spec.segment)
        assert os.path.exists(seg_file)
        assert len(arena.segment_names) == 1
        del arr, raw  # drop exported pointers before the segment closes
    finally:
        arena.close()


def test_result_arena_foreign_copy_memoized_per_step(prefix):
    arena = dataplane.ResultArena(prefix + "dpr")
    try:
        arena.begin_step(0, -1)
        foreign = np.full(BIG, 3, dtype=np.uint8)  # heap-backed result
        raw = pickle.PickleBuffer(foreign).raw()
        s1 = arena.place(raw)
        s2 = arena.place(pickle.PickleBuffer(foreign).raw())
        # shared across ranks: copied once, then descriptor-shared
        assert s1 == s2
        arena.begin_step(1, 0)
        s3 = arena.place(pickle.PickleBuffer(foreign).raw())
        assert s3 != s1  # the memo does not outlive the step
    finally:
        arena.close()


def test_result_arena_recycles_only_released_segments(prefix):
    arena = dataplane.ResultArena(prefix + "dpr")
    try:
        big = 768 * 1024  # two don't fit one 1 MiB segment
        arena.begin_step(0, -1)
        arena.alloc_array((big,), np.uint8)
        assert len(arena.segment_names) == 1
        # step 1: step 0 NOT released -> must open a second segment
        arena.begin_step(1, -1)
        arena.alloc_array((big,), np.uint8)
        assert len(arena.segment_names) == 2
        # step 2: everything through step 1 released -> recycle, not grow
        arena.begin_step(2, 1)
        arena.alloc_array((big,), np.uint8)
        assert len(arena.segment_names) == 2
    finally:
        arena.close()


def test_result_arena_small_allocations_stay_on_heap(prefix):
    arena = dataplane.ResultArena(prefix + "dpr")
    try:
        arena.begin_step(0, -1)
        small = arena.alloc_array((8,), np.int64)
        assert small.flags.writeable
        assert arena.segment_names == []  # nothing was parked
    finally:
        arena.close()


# -- view ledger -------------------------------------------------------------


def _lease_for(arr):
    mv = memoryview(arr).cast("B")
    return (mv, arr.__array_interface__["data"][0])


def test_ledger_cursor_advances_when_views_die():
    ledger = dataplane.ViewLedger()
    arr = np.zeros(BIG, dtype=np.uint8)
    ledger.track(("result", arr), [_lease_for(arr)], step=0)
    assert ledger.released(upcoming_step=1) == -1  # arr still alive
    del arr
    assert ledger.released(upcoming_step=2) == 1


def test_ledger_finds_arrays_in_nested_structures():
    ledger = dataplane.ViewLedger()
    arr = np.zeros(BIG, dtype=np.uint8)
    obj = ("result", {"fields": [arr[:10], arr], "rc": 3})
    ledger.track(obj, [_lease_for(arr)], step=4)
    assert ledger.released(upcoming_step=5) == 3
    del obj, arr
    assert ledger.released(upcoming_step=6) == 5


def test_ledger_pins_on_unmatched_lease():
    """A leased buffer the walk can't see must freeze recycling forever
    (conservative: the arena then never rewrites that region)."""
    ledger = dataplane.ViewLedger()
    arr = np.zeros(BIG, dtype=np.uint8)

    class Opaque:  # hides the array from the structure walk
        def __init__(self, a):
            self.a = a

    ledger.track(("result", Opaque(arr)), [_lease_for(arr)], step=2)
    del arr
    assert ledger.released(upcoming_step=10) == 1
    assert ledger.released(upcoming_step=99) == 1


def test_ledger_cursor_is_monotone():
    ledger = dataplane.ViewLedger()
    a0 = np.zeros(BIG, dtype=np.uint8)
    ledger.track(("r", a0), [_lease_for(a0)], step=0)
    assert ledger.released(upcoming_step=3) == -1
    del a0
    assert ledger.released(upcoming_step=4) == 3
    assert ledger.released(upcoming_step=4) == 3  # never goes back


# -- copy-on-write helper ----------------------------------------------------


def test_materialize_copies_only_read_only_arrays():
    writable = np.arange(10)
    assert dataplane.materialize(writable) is writable
    frozen = np.arange(10)
    frozen.setflags(write=False)
    out = dataplane.materialize(frozen)
    assert out is not frozen
    assert out.flags.writeable
    np.testing.assert_array_equal(out, frozen)


# -- slot wire format --------------------------------------------------------


def test_slot_descriptor_roundtrip(prefix):
    slot = _Slot(prefix + "req0")
    arena = dataplane.SendArena(prefix + "dps0")
    cache = dataplane.SegmentCache()
    try:
        big = np.arange(BIG, dtype=np.uint8)
        small = np.arange(4, dtype=np.int64)
        slot.write(("coll", big, small), arena=arena)
        obj, leases = slot.read("view", cache)
        kind, rbig, rsmall = obj
        assert kind == "coll"
        np.testing.assert_array_equal(rbig, big)
        np.testing.assert_array_equal(rsmall, small)
        # the large buffer is a zero-copy read-only view with a lease;
        # the small one is a private writable copy
        assert not rbig.flags.writeable
        assert rsmall.flags.writeable
        assert len(leases) == 1
        # "own" mode copies everything out writable
        obj2, leases2 = slot.read("own", cache)
        assert obj2[1].flags.writeable
        assert leases2 == []
        del obj, rbig, rsmall, obj2, leases  # drop views before close
    finally:
        cache.close()
        arena.close()
        slot.unlink()


def test_slot_without_arena_inlines_everything(prefix):
    slot = _Slot(prefix + "req0")
    try:
        big = np.arange(4 * BIG, dtype=np.uint8)
        slot.write(("coll", big))  # pickle plane: no arena
        obj, leases = slot.read("own")
        np.testing.assert_array_equal(obj[1], big)
        assert obj[1].flags.writeable
        assert leases == []
    finally:
        slot.unlink()


# -- _sanitize_exc -----------------------------------------------------------


def test_sanitize_passes_picklable_exceptions_through():
    exc = ValueError("plain")
    assert _sanitize_exc(exc) is exc


def test_sanitize_preserves_args_and_traceback():
    def boom():
        raise RuntimeError("ctx", lambda: None)  # lambda: unpicklable

    try:
        boom()
    except RuntimeError as exc:
        out = _sanitize_exc(exc)
    assert isinstance(out, UnpicklableRankError)
    assert out.original_type == "RuntimeError"
    assert out.original_args[0] == "ctx"
    assert "lambda" in out.original_args[1]
    assert "boom" in out.original_traceback  # formatted traceback survives
    # the stand-in itself round-trips, attributes included
    back = pickle.loads(pickle.dumps(out))
    assert back.original_type == "RuntimeError"
    assert "boom" in back.original_traceback


def test_unpicklable_rank_exception_reaches_parent_with_context():
    def fail(comm):
        if comm.rank == 1:
            raise RuntimeError("details", lambda: None)
        comm.barrier()

    rt = create_runtime("procs", nprocs=2, meter_compute=False)
    with pytest.raises(Exception) as info:
        rt.run(fail)
    chain = []
    e = info.value
    while e is not None:
        chain.append(e)
        e = e.__cause__
    stand_in = next(
        (x for x in chain if getattr(x, "original_type", None)), None
    )
    assert stand_in is not None
    assert stand_in.original_type == "RuntimeError"
    assert stand_in.original_args[0] == "details"
    assert "fail" in stand_in.original_traceback


# -- end-to-end on both planes ----------------------------------------------


def _collective_program(comm):
    rng = np.random.default_rng(100 + comm.rank)
    big = rng.integers(0, 1 << 30, size=2 * BIG, dtype=np.int64)
    cts = np.full(comm.size, big.size // comm.size, dtype=np.int64)
    cts[-1] += big.size - int(cts.sum())
    recv, rc = comm.Alltoallv(big, cts)
    merged, counts = comm.Allgatherv(big[:BIG])
    root_val = comm.Bcast(big if comm.rank == 0 else
                          np.empty(big.size, dtype=np.int64))
    total = comm.Allreduce(np.arange(BIG, dtype=np.int64))
    return (int(recv.sum()), int(rc.sum()), int(merged.sum()),
            int(counts.sum()), int(root_val.sum()), int(total.sum()))


@pytest.mark.parametrize("plane", dataplane.DATAPLANES)
def test_collectives_identical_across_planes(plane):
    rt = create_runtime("procs", nprocs=3, meter_compute=False,
                        dataplane=plane)
    got = rt.run(_collective_program)
    ref = create_runtime("serial", nprocs=3, meter_compute=False).run(
        _collective_program
    )
    assert got == ref
    assert rt.last_shm_reclaimed == []


def test_shm_plane_delivers_views_pickle_plane_copies():
    def probe(comm):
        big = np.full(2 * BIG, comm.rank, dtype=np.int64)
        merged, _ = comm.Allgatherv(big)
        writable = bool(merged.flags.writeable)
        local = dataplane.materialize(merged)  # copy-on-write escape hatch
        local += 1  # must always be legal on the materialized copy
        return writable, int(local.sum())

    shm = create_runtime("procs", nprocs=2, meter_compute=False,
                         dataplane="shm").run(probe)
    pkl = create_runtime("procs", nprocs=2, meter_compute=False,
                         dataplane="pickle").run(probe)
    assert [w for w, _ in shm] == [False, False]  # zero-copy views
    assert [w for w, _ in pkl] == [True, True]    # private copies
    assert [s for _, s in shm] == [s for _, s in pkl]


def test_views_survive_across_supersteps():
    """A rank may hold a received view while later collectives recycle the
    arena; the release cursors must keep its memory intact."""
    def program(comm):
        first, _ = comm.Allgatherv(
            np.full(2 * BIG, 7 + comm.rank, dtype=np.int64)
        )
        keep = first  # hold the view across many further exchanges
        for i in range(20):
            buf = np.full(4 * BIG, i, dtype=np.int64)
            cts = np.full(comm.size, buf.size // comm.size, dtype=np.int64)
            cts[-1] += buf.size - int(cts.sum())
            comm.Alltoallv(buf, cts)
        return int(keep.sum())

    rt = create_runtime("procs", nprocs=2, meter_compute=False,
                        dataplane="shm")
    got = rt.run(program)
    ref = create_runtime("serial", nprocs=2, meter_compute=False).run(program)
    assert got == ref
