"""Collective semantics: every SimComm operation against a sequential
reference, at several rank counts."""

import numpy as np
import pytest

from repro.simmpi import Runtime, run_spmd
from repro.simmpi.dataplane import materialize

NPROCS = [1, 2, 3, 4, 8]


@pytest.mark.parametrize("nprocs", NPROCS)
def test_barrier_runs(nprocs):
    def fn(comm):
        comm.barrier()
        return comm.rank

    out, stats = run_spmd(nprocs, fn)
    assert out == list(range(nprocs))
    assert stats.rounds == 1


@pytest.mark.parametrize("nprocs", NPROCS)
@pytest.mark.parametrize("root", [0, -1])
def test_bcast_object(nprocs, root):
    root = root % nprocs

    def fn(comm):
        obj = {"payload": [1, 2, 3]} if comm.rank == root else None
        return comm.bcast(obj, root=root)

    out, _ = run_spmd(nprocs, fn)
    assert all(o == {"payload": [1, 2, 3]} for o in out)


@pytest.mark.parametrize("nprocs", NPROCS)
def test_Bcast_array(nprocs):
    def fn(comm):
        arr = (
            np.arange(10, dtype=np.int64) * 3
            if comm.rank == 0
            else np.empty(10, dtype=np.int64)
        )
        return comm.Bcast(arr, root=0)

    out, _ = run_spmd(nprocs, fn)
    for o in out:
        np.testing.assert_array_equal(o, np.arange(10) * 3)


def test_Bcast_receivers_get_isolated_results():
    # In the default shared mode receivers hold one sealed result, so a
    # rank that wants to mutate materializes a private copy first — and
    # those copies stay isolated across ranks, same as the historical
    # per-rank private copies.
    def fn(comm):
        arr = np.zeros(4) if comm.rank == 0 else np.empty(4)
        got = materialize(comm.Bcast(arr, root=0))
        got += comm.rank  # must not affect other ranks
        comm.barrier()
        return got.copy()

    out, _ = run_spmd(4, fn)
    for r, o in enumerate(out):
        np.testing.assert_allclose(o, r)


@pytest.mark.parametrize("nprocs", NPROCS)
def test_allgather(nprocs):
    def fn(comm):
        return comm.allgather(comm.rank * 10)

    out, _ = run_spmd(nprocs, fn)
    expected = [r * 10 for r in range(nprocs)]
    assert all(o == expected for o in out)


@pytest.mark.parametrize("nprocs", NPROCS)
def test_gather_scatter_roundtrip(nprocs):
    def fn(comm):
        gathered = comm.gather(comm.rank + 1, root=0)
        if comm.rank == 0:
            assert gathered == [r + 1 for r in range(comm.size)]
            objs = [g * 2 for g in gathered]
        else:
            assert gathered is None
            objs = None
        return comm.scatter(objs, root=0)

    out, _ = run_spmd(nprocs, fn)
    assert out == [(r + 1) * 2 for r in range(nprocs)]


@pytest.mark.parametrize("op,ref", [("sum", sum), ("max", max), ("min", min)])
@pytest.mark.parametrize("nprocs", NPROCS)
def test_allreduce_scalar(nprocs, op, ref):
    def fn(comm):
        return comm.allreduce(comm.rank + 1, op=op)

    out, _ = run_spmd(nprocs, fn)
    expected = ref(range(1, nprocs + 1))
    assert out == [expected] * nprocs


@pytest.mark.parametrize("nprocs", NPROCS)
def test_Allreduce_array(nprocs):
    def fn(comm):
        return comm.Allreduce(np.full(5, comm.rank, dtype=np.float64), op="sum")

    out, _ = run_spmd(nprocs, fn)
    total = sum(range(nprocs))
    for o in out:
        np.testing.assert_allclose(o, total)


def test_Allreduce_shape_mismatch_raises():
    def fn(comm):
        return comm.Allreduce(np.zeros(comm.rank + 1))

    with pytest.raises(ValueError, match="shape mismatch"):
        run_spmd(3, fn)


@pytest.mark.parametrize("nprocs", NPROCS)
def test_Reduce_root_only(nprocs):
    def fn(comm):
        return comm.Reduce(np.array([comm.rank, 1.0]), op="sum", root=0)

    out, _ = run_spmd(nprocs, fn)
    np.testing.assert_allclose(out[0], [sum(range(nprocs)), nprocs])
    assert all(o is None for o in out[1:])


@pytest.mark.parametrize("nprocs", NPROCS)
def test_Allgatherv(nprocs):
    def fn(comm):
        mine = np.full(comm.rank + 1, comm.rank, dtype=np.int64)
        merged, counts = comm.Allgatherv(mine)
        return merged, counts

    out, _ = run_spmd(nprocs, fn)
    expected = np.concatenate(
        [np.full(r + 1, r, dtype=np.int64) for r in range(nprocs)]
    )
    for merged, counts in out:
        np.testing.assert_array_equal(merged, expected)
        np.testing.assert_array_equal(counts, np.arange(1, nprocs + 1))


@pytest.mark.parametrize("nprocs", NPROCS)
def test_Gatherv_and_Scatterv(nprocs):
    def fn(comm):
        mine = np.arange(comm.rank + 2, dtype=np.float64) + comm.rank
        at_root = comm.Gatherv(mine, root=0)
        if comm.rank == 0:
            merged, counts = at_root
            back = comm.Scatterv(merged, counts, root=0)
        else:
            assert at_root is None
            back = comm.Scatterv(None, None, root=0)
        np.testing.assert_array_equal(back, mine)
        return True

    out, _ = run_spmd(nprocs, fn)
    assert all(out)


@pytest.mark.parametrize("nprocs", NPROCS)
def test_Alltoall_matrix_transpose_semantics(nprocs):
    def fn(comm):
        sent = np.array(
            [comm.rank * 100 + dst for dst in range(comm.size)], dtype=np.int64
        )
        return comm.Alltoall(sent)

    out, _ = run_spmd(nprocs, fn)
    for dst, received in enumerate(out):
        np.testing.assert_array_equal(
            received, [src * 100 + dst for src in range(nprocs)]
        )


@pytest.mark.parametrize("nprocs", NPROCS)
def test_Alltoallv_reference(nprocs):
    def fn(comm):
        # rank r sends (r, dst) pairs: dst copies of value r*1000+dst
        counts = np.array(
            [(comm.rank + dst) % 3 for dst in range(comm.size)], dtype=np.int64
        )
        buf = np.concatenate(
            [
                np.full(counts[dst], comm.rank * 1000 + dst, dtype=np.int64)
                for dst in range(comm.size)
            ]
        ) if counts.sum() else np.empty(0, dtype=np.int64)
        recv, rcounts = comm.Alltoallv(buf, counts)
        return recv, rcounts

    out, _ = run_spmd(nprocs, fn)
    for dst, (recv, rcounts) in enumerate(out):
        expected_counts = [(src + dst) % 3 for src in range(nprocs)]
        np.testing.assert_array_equal(rcounts, expected_counts)
        expected = np.concatenate(
            [
                np.full(c, src * 1000 + dst, dtype=np.int64)
                for src, c in enumerate(expected_counts)
            ]
        ) if sum(expected_counts) else np.empty(0, dtype=np.int64)
        np.testing.assert_array_equal(recv, expected)


def test_Alltoallv_validates_counts():
    def fn(comm):
        return comm.Alltoallv(np.zeros(5), np.array([1, 1]))  # sums to 2 != 5

    with pytest.raises(ValueError):
        run_spmd(2, fn)


def test_Alltoallv_float_payload():
    def fn(comm):
        buf = np.full(comm.size, comm.rank + 0.5)
        recv, _ = comm.Alltoallv(buf, np.ones(comm.size, dtype=np.int64))
        return recv

    out, _ = run_spmd(4, fn)
    for recv in out:
        np.testing.assert_allclose(recv, np.arange(4) + 0.5)


@pytest.mark.parametrize("nprocs", NPROCS)
def test_Alltoallv_fields_reference(nprocs):
    """Multi-field records arrive grouped by source with each field's own
    dtype preserved, mirroring the single-buffer reference semantics."""

    def fn(comm):
        counts = np.array(
            [(comm.rank + dst) % 3 for dst in range(comm.size)], dtype=np.int64
        )
        nrec = int(counts.sum())
        slots = np.repeat(
            np.arange(comm.size, dtype=np.uint16), counts
        )
        vals = np.full(nrec, comm.rank, dtype=np.int16)
        (rslots, rvals), rcounts = comm.Alltoallv_fields(
            (slots, vals), counts
        )
        return rslots, rvals, rcounts

    out, _ = run_spmd(nprocs, fn)
    for dst, (rslots, rvals, rcounts) in enumerate(out):
        expected_counts = [(src + dst) % 3 for src in range(nprocs)]
        np.testing.assert_array_equal(rcounts, expected_counts)
        assert rslots.dtype == np.uint16 and rvals.dtype == np.int16
        np.testing.assert_array_equal(
            rslots, np.repeat(dst, sum(expected_counts))
        )
        np.testing.assert_array_equal(
            rvals,
            np.concatenate([
                np.full(c, src, dtype=np.int16)
                for src, c in enumerate(expected_counts)
            ]) if sum(expected_counts) else np.empty(0, dtype=np.int16),
        )


def test_Alltoallv_fields_meters_true_wire_bytes():
    """A (uint16, int16) record is metered at 4 bytes — not the 16 an
    int64-interleaved encoding of the same records would charge."""
    nprocs = 4

    def fn(comm):
        counts = np.ones(comm.size, dtype=np.int64)
        with comm.phase("payload"):
            comm.Alltoallv_fields(
                (np.zeros(comm.size, dtype=np.uint16),
                 np.zeros(comm.size, dtype=np.int16)),
                counts,
            )
        return True

    _, stats = run_spmd(nprocs, fn)
    payload = [e for e in stats.events
               if e.tag == "payload" and e.op == "alltoallv"]
    assert len(payload) == 1
    # 3 off-rank records x 4 bytes, per rank
    np.testing.assert_array_equal(
        payload[0].bytes_sent, np.full(nprocs, 12)
    )
    per_op = stats.bytes_by_tag_op()["payload"]
    assert per_op["alltoallv"] == 4 * 12
    assert stats.exchange_bytes_by_tag()["payload"] == (
        per_op["alltoallv"] + per_op["alltoall"]
    )


def test_Alltoallv_fields_validates():
    def fn(comm):
        comm.Alltoallv_fields(
            (np.zeros(4), np.zeros(3)), np.array([2, 2], dtype=np.int64)
        )

    with pytest.raises(ValueError, match="equal-length"):
        run_spmd(2, fn)


@pytest.mark.parametrize("nprocs", NPROCS)
def test_exscan(nprocs):
    def fn(comm):
        return comm.exscan(comm.rank + 1, op="sum")

    out, _ = run_spmd(nprocs, fn)
    assert out == [sum(range(1, r + 1)) for r in range(nprocs)]


def test_phase_tagging():
    def fn(comm):
        with comm.phase("alpha"):
            comm.barrier()
            with comm.phase("beta"):
                comm.allreduce(1)
        comm.barrier()
        return True

    rt = Runtime(2)
    rt.run(fn)
    tags = [e.tag for e in rt.stats.events]
    assert tags == ["alpha", "beta", ""]
