"""Alpha-beta machine-model math (single-tier and two-tier flavors)."""

import numpy as np
import pytest

from repro.simmpi import (
    BLUE_WATERS_TIERED,
    CommStats,
    MachineModel,
    TieredMachineModel,
    TimeModel,
)
from repro.simmpi.metrics import CollectiveEvent, TierMetering


def _event(op, nbytes, compute, tag="", tiers=None):
    return CollectiveEvent(
        op=op,
        tag=tag,
        bytes_sent=np.asarray(nbytes, dtype=np.int64),
        compute_seconds=np.asarray(compute, dtype=np.float64),
        tiers=tiers,
    )


def _tiers(intra, inter, wire_intra, wire_inter, *, intra_hops, inter_hops,
           node_of):
    return TierMetering(
        intra_bytes=np.asarray(intra, dtype=np.int64),
        inter_bytes=np.asarray(inter, dtype=np.int64),
        wire_intra=np.asarray(wire_intra, dtype=np.int64),
        wire_inter=np.asarray(wire_inter, dtype=np.int64),
        intra_hops=intra_hops,
        inter_hops=inter_hops,
        node_of=np.asarray(node_of, dtype=np.int32),
    )


def test_tree_collective_cost_log_hops():
    m = MachineModel(alpha=1.0, beta=0.0)
    e = _event("allreduce", [0, 0, 0, 0], [0, 0, 0, 0])
    assert m.collective_cost(e, 4) == pytest.approx(2.0)  # log2(4) hops
    assert m.collective_cost(e, 5) == pytest.approx(3.0)  # ceil(log2(5))


def test_pairwise_collective_cost_p_minus_1():
    m = MachineModel(alpha=1.0, beta=0.0)
    e = _event("alltoallv", [0, 0, 0, 0], [0, 0, 0, 0])
    assert m.collective_cost(e, 4) == pytest.approx(3.0)


def test_bandwidth_term_uses_max_rank():
    m = MachineModel(alpha=0.0, beta=1.0)
    e = _event("allreduce", [10, 50, 20], [0, 0, 0])
    assert m.collective_cost(e, 3) == pytest.approx(50.0)


def test_single_rank_comm_is_free():
    m = MachineModel(alpha=1.0, beta=1.0)
    e = _event("allreduce", [100], [0])
    assert m.collective_cost(e, 1) == 0.0


def test_superstep_time_is_compute_plus_comm():
    model = TimeModel(MachineModel(alpha=1.0, beta=2.0, compute_scale=1.0))
    e = _event("allreduce", [4, 8], [0.5, 0.25])
    # compute 0.5 + latency 1*log2(2) + bandwidth 2*8
    assert model.superstep_time(e, 2) == pytest.approx(0.5 + 1.0 + 16.0)


def test_compute_scale():
    model = TimeModel(MachineModel(alpha=0.0, beta=0.0, compute_scale=0.5))
    e = _event("barrier", [0, 0], [2.0, 1.0])
    assert model.superstep_time(e, 2) == pytest.approx(1.0)


def test_total_and_breakdown_consistent():
    stats = CommStats(2)
    stats.record(_event("allreduce", [8, 8], [0.1, 0.2]))
    stats.record(_event("alltoallv", [100, 50], [0.3, 0.1]))
    model = TimeModel(MachineModel(alpha=1e-3, beta=1e-6))
    breakdown = model.breakdown(stats)
    assert breakdown["total"] == pytest.approx(model.total_time(stats))
    assert breakdown["compute"] == pytest.approx(0.2 + 0.3)
    assert breakdown["latency"] == pytest.approx(1e-3 * (1 + 1))
    assert breakdown["bandwidth"] == pytest.approx(1e-6 * (8 + 100))


def test_tiered_model_prices_each_tier():
    m = TieredMachineModel(alpha=10.0, beta=2.0, alpha_intra=1.0,
                           beta_intra=0.5)
    tiers = _tiers(
        intra=[4, 4, 0, 0], inter=[0, 0, 8, 8],
        wire_intra=[6, 2, 0, 0], wire_inter=[0, 0, 8, 16],
        intra_hops=3, inter_hops=2, node_of=[0, 0, 1, 1],
    )
    e = _event("alltoallv", [4, 4, 8, 8], [0, 0, 0, 0], tiers=tiers)
    latency, bandwidth = m.cost_parts(e, 4)
    # latency: 1.0 * 3 intra hops + 10.0 * 2 inter hops
    assert latency == pytest.approx(1.0 * 3 + 10.0 * 2)
    # bandwidth: busiest rank's shared-memory wire (6) at beta_intra,
    # busiest node's injected network wire (node 1: 8 + 16) at beta
    assert bandwidth == pytest.approx(0.5 * 6 + 2.0 * 24)
    assert m.collective_cost(e, 4) == pytest.approx(latency + bandwidth)


def test_tiered_model_falls_back_untiered():
    base = MachineModel(alpha=10.0, beta=2.0)
    tiered = TieredMachineModel(alpha=10.0, beta=2.0, alpha_intra=1.0,
                                beta_intra=0.5)
    e = _event("allreduce", [8, 16], [0, 0])  # no TierMetering attached
    assert tiered.cost_parts(e, 2) == base.cost_parts(e, 2)


def test_tiered_breakdown_consistent():
    tiers = _tiers(
        intra=[8, 0], inter=[0, 8], wire_intra=[8, 0], wire_inter=[0, 8],
        intra_hops=1, inter_hops=1, node_of=[0, 1],
    )
    stats = CommStats(2)
    stats.record(_event("allreduce", [8, 8], [0.1, 0.2], tiers=tiers))
    stats.record(_event("allreduce", [8, 8], [0.1, 0.2]))  # untiered round
    model = TimeModel(TieredMachineModel(alpha=1e-3, beta=1e-6,
                                         alpha_intra=1e-4, beta_intra=1e-7))
    breakdown = model.breakdown(stats)
    assert breakdown["total"] == pytest.approx(model.total_time(stats))
    assert breakdown["latency"] == pytest.approx(
        (1e-4 + 1e-3) + 1e-3)  # tiered round + untiered log2(2) hop
    assert breakdown["bandwidth"] == pytest.approx(
        (1e-7 * 8 + 1e-6 * 8) + 1e-6 * 8)


def test_blue_waters_tiered_constants_realistic():
    """The two-tier flavor keeps the paper-calibrated network constants and
    adds a shared-memory tier in the realistic 10-20x bandwidth range."""
    m = BLUE_WATERS_TIERED
    assert m.name == "blue-waters-tiered"
    ratio = m.beta / m.beta_intra  # inter-node seconds/byte premium
    assert 10.0 <= ratio <= 20.0
    assert m.alpha > m.alpha_intra


def test_time_by_tag():
    stats = CommStats(2)
    stats.record(_event("barrier", [0, 0], [1.0, 0.0], tag="a"))
    stats.record(_event("barrier", [0, 0], [2.0, 0.0], tag="b"))
    stats.record(_event("barrier", [0, 0], [3.0, 0.0], tag="a"))
    model = TimeModel(MachineModel(alpha=0.0, beta=0.0))
    by_tag = model.time_by_tag(stats)
    assert by_tag["a"] == pytest.approx(4.0)
    assert by_tag["b"] == pytest.approx(2.0)
