"""Alpha-beta machine-model math."""

import numpy as np
import pytest

from repro.simmpi import CommStats, MachineModel, TimeModel
from repro.simmpi.metrics import CollectiveEvent


def _event(op, nbytes, compute, tag=""):
    return CollectiveEvent(
        op=op,
        tag=tag,
        bytes_sent=np.asarray(nbytes, dtype=np.int64),
        compute_seconds=np.asarray(compute, dtype=np.float64),
    )


def test_tree_collective_cost_log_hops():
    m = MachineModel(alpha=1.0, beta=0.0)
    e = _event("allreduce", [0, 0, 0, 0], [0, 0, 0, 0])
    assert m.collective_cost(e, 4) == pytest.approx(2.0)  # log2(4) hops
    assert m.collective_cost(e, 5) == pytest.approx(3.0)  # ceil(log2(5))


def test_pairwise_collective_cost_p_minus_1():
    m = MachineModel(alpha=1.0, beta=0.0)
    e = _event("alltoallv", [0, 0, 0, 0], [0, 0, 0, 0])
    assert m.collective_cost(e, 4) == pytest.approx(3.0)


def test_bandwidth_term_uses_max_rank():
    m = MachineModel(alpha=0.0, beta=1.0)
    e = _event("allreduce", [10, 50, 20], [0, 0, 0])
    assert m.collective_cost(e, 3) == pytest.approx(50.0)


def test_single_rank_comm_is_free():
    m = MachineModel(alpha=1.0, beta=1.0)
    e = _event("allreduce", [100], [0])
    assert m.collective_cost(e, 1) == 0.0


def test_superstep_time_is_compute_plus_comm():
    model = TimeModel(MachineModel(alpha=1.0, beta=2.0, compute_scale=1.0))
    e = _event("allreduce", [4, 8], [0.5, 0.25])
    # compute 0.5 + latency 1*log2(2) + bandwidth 2*8
    assert model.superstep_time(e, 2) == pytest.approx(0.5 + 1.0 + 16.0)


def test_compute_scale():
    model = TimeModel(MachineModel(alpha=0.0, beta=0.0, compute_scale=0.5))
    e = _event("barrier", [0, 0], [2.0, 1.0])
    assert model.superstep_time(e, 2) == pytest.approx(1.0)


def test_total_and_breakdown_consistent():
    stats = CommStats(2)
    stats.record(_event("allreduce", [8, 8], [0.1, 0.2]))
    stats.record(_event("alltoallv", [100, 50], [0.3, 0.1]))
    model = TimeModel(MachineModel(alpha=1e-3, beta=1e-6))
    breakdown = model.breakdown(stats)
    assert breakdown["total"] == pytest.approx(model.total_time(stats))
    assert breakdown["compute"] == pytest.approx(0.2 + 0.3)
    assert breakdown["latency"] == pytest.approx(1e-3 * (1 + 1))
    assert breakdown["bandwidth"] == pytest.approx(1e-6 * (8 + 100))


def test_time_by_tag():
    stats = CommStats(2)
    stats.record(_event("barrier", [0, 0], [1.0, 0.0], tag="a"))
    stats.record(_event("barrier", [0, 0], [2.0, 0.0], tag="b"))
    stats.record(_event("barrier", [0, 0], [3.0, 0.0], tag="a"))
    model = TimeModel(MachineModel(alpha=0.0, beta=0.0))
    by_tag = model.time_by_tag(stats)
    assert by_tag["a"] == pytest.approx(4.0)
    assert by_tag["b"] == pytest.approx(2.0)
