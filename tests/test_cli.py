"""CLI end-to-end tests."""

import numpy as np
import pytest

from repro.cli import main
from repro.graph import io, rmat


@pytest.fixture()
def graph_file(tmp_path):
    g = rmat(8, 10, seed=1)
    path = tmp_path / "g.txt"
    io.write_edge_list(g, path)
    return str(path), g


def test_cli_partitions_and_writes(graph_file, tmp_path, capsys):
    path, g = graph_file
    out = tmp_path / "parts.txt"
    rc = main([path, "-p", "4", "-r", "2", "-o", str(out)])
    assert rc == 0
    parts = np.loadtxt(out, dtype=np.int64)
    assert parts.shape == (g.n,)
    assert parts.min() >= 0 and parts.max() < 4
    captured = capsys.readouterr().out
    assert "cut=" in captured and "modeled parallel time" in captured


def test_cli_metis_input(tmp_path):
    g = rmat(7, 8, seed=2)
    path = tmp_path / "g.metis"
    io.write_metis(g, path)
    assert main([str(path), "-p", "2", "-r", "1"]) == 0


def test_cli_npz_input(tmp_path):
    g = rmat(7, 8, seed=2)
    path = tmp_path / "g.npz"
    io.save_npz(g, path)
    assert main([str(path), "-p", "2", "-r", "1", "--single-objective"]) == 0


def test_cli_missing_file(tmp_path, capsys):
    assert main([str(tmp_path / "nope.txt")]) == 2
    assert "error reading" in capsys.readouterr().err


def test_cli_too_many_parts(graph_file, capsys):
    path, g = graph_file
    assert main([path, "-p", str(g.n + 5)]) == 2
    assert "cannot cut" in capsys.readouterr().err


def test_cli_options(graph_file):
    path, _ = graph_file
    assert main([
        path, "-p", "4", "-r", "2", "--init", "block",
        "--vert-imbalance", "0.2", "--edge-imbalance", "0.2",
        "--distribution", "block", "--seed", "7",
    ]) == 0


def test_cli_multilevel_reports_hierarchy(graph_file, capsys):
    path, _ = graph_file
    rc = main([path, "-p", "4", "-r", "2", "--backend", "serial",
               "--multilevel", "--ml-coarsen", "hem", "--ml-levels", "3"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "multilevel:" in out and "hem coarsening" in out
    assert "cut trajectory" in out


def test_cli_multilevel_matches_library(graph_file, tmp_path):
    path, g = graph_file
    out = tmp_path / "parts.txt"
    rc = main([path, "-p", "4", "-r", "2", "--backend", "serial",
               "--multilevel", "-o", str(out)])
    assert rc == 0
    from repro.core import PulpParams, xtrapulp

    ref = xtrapulp(g, 4, nprocs=2, params=PulpParams(multilevel=True),
                   backend="serial")
    np.testing.assert_array_equal(
        np.loadtxt(out, dtype=np.int64), ref.parts
    )


# -- fault-tolerance flags and exit codes ------------------------------------

FT = ["-p", "4", "-r", "2", "--backend", "serial"]


def test_cli_checkpoint_dir_writes_epochs(graph_file, tmp_path):
    path, _ = graph_file
    ckpt = tmp_path / "ckpt"
    assert main([path, *FT, "--checkpoint-dir", str(ckpt)]) == 0
    epochs = sorted(p.name for p in ckpt.iterdir())
    assert epochs and all(e.startswith("epoch_") for e in epochs)
    assert all((ckpt / e / "MANIFEST.json").exists() for e in epochs)


def test_cli_injected_fault_exits_3_then_resume_exits_4(graph_file, tmp_path,
                                                        capsys):
    path, _ = graph_file
    ckpt = tmp_path / "ckpt"
    out_a, out_b = tmp_path / "a.txt", tmp_path / "b.txt"
    rc = main([path, *FT, "--checkpoint-dir", str(ckpt),
               "--inject-fault", "1:vertex_refine:4"])
    assert rc == 3  # failed, but a committed epoch is available
    err = capsys.readouterr().err
    assert f"--resume {ckpt}" in err
    rc = main([path, *FT, "--resume", str(ckpt), "-o", str(out_a)])
    assert rc == 4  # resumed successfully
    assert "resumed from checkpoint" in capsys.readouterr().out
    # resumed partition is bit-identical to an uninterrupted run
    assert main([path, *FT, "-o", str(out_b)]) == 0
    assert np.array_equal(np.loadtxt(out_a, dtype=np.int64),
                          np.loadtxt(out_b, dtype=np.int64))


def test_cli_fault_without_checkpoint_exits_1(graph_file, capsys):
    path, _ = graph_file
    rc = main([path, *FT, "--inject-fault", "0:vertex_balance:2"])
    assert rc == 1  # no checkpoint dir: plain failure, nothing to resume
    assert "error" in capsys.readouterr().err


def test_cli_malformed_inject_fault_is_usage_error(graph_file, capsys):
    path, _ = graph_file
    assert main([path, *FT, "--inject-fault", "not-a-spec"]) == 2
    assert "RANK:PHASE:STEP" in capsys.readouterr().err


def test_cli_resume_against_wrong_graph_is_usage_error(graph_file, tmp_path,
                                                       capsys):
    path, _ = graph_file
    ckpt = tmp_path / "ckpt"
    assert main([path, *FT, "--checkpoint-dir", str(ckpt)]) == 0
    other = rmat(8, 10, seed=99)
    other_path = tmp_path / "other.txt"
    io.write_edge_list(other, other_path)
    assert main([str(other_path), *FT, "--resume", str(ckpt)]) == 2
    assert "graph_signature" in capsys.readouterr().err


def test_cli_resume_with_no_checkpoint_is_usage_error(graph_file, tmp_path,
                                                      capsys):
    path, _ = graph_file
    assert main([path, *FT, "--resume", str(tmp_path / "empty")]) == 2
    assert "no committed" in capsys.readouterr().err


def test_cli_help_documents_exit_codes(capsys):
    with pytest.raises(SystemExit):
        main(["--help"])
    out = capsys.readouterr().out
    assert "exit codes" in out
    assert "--resume" in out and "--inject-fault" in out
