"""CLI end-to-end tests."""

import numpy as np
import pytest

from repro.cli import main
from repro.graph import io, rmat


@pytest.fixture()
def graph_file(tmp_path):
    g = rmat(8, 10, seed=1)
    path = tmp_path / "g.txt"
    io.write_edge_list(g, path)
    return str(path), g


def test_cli_partitions_and_writes(graph_file, tmp_path, capsys):
    path, g = graph_file
    out = tmp_path / "parts.txt"
    rc = main([path, "-p", "4", "-r", "2", "-o", str(out)])
    assert rc == 0
    parts = np.loadtxt(out, dtype=np.int64)
    assert parts.shape == (g.n,)
    assert parts.min() >= 0 and parts.max() < 4
    captured = capsys.readouterr().out
    assert "cut=" in captured and "modeled parallel time" in captured


def test_cli_metis_input(tmp_path):
    g = rmat(7, 8, seed=2)
    path = tmp_path / "g.metis"
    io.write_metis(g, path)
    assert main([str(path), "-p", "2", "-r", "1"]) == 0


def test_cli_npz_input(tmp_path):
    g = rmat(7, 8, seed=2)
    path = tmp_path / "g.npz"
    io.save_npz(g, path)
    assert main([str(path), "-p", "2", "-r", "1", "--single-objective"]) == 0


def test_cli_missing_file(tmp_path, capsys):
    assert main([str(tmp_path / "nope.txt")]) == 2
    assert "error reading" in capsys.readouterr().err


def test_cli_too_many_parts(graph_file, capsys):
    path, g = graph_file
    assert main([path, "-p", str(g.n + 5)]) == 2
    assert "cannot cut" in capsys.readouterr().err


def test_cli_options(graph_file):
    path, _ = graph_file
    assert main([
        path, "-p", "4", "-r", "2", "--init", "block",
        "--vert-imbalance", "0.2", "--edge-imbalance", "0.2",
        "--distribution", "block", "--seed", "7",
    ]) == 0
