"""Experiment table formatting and persistence."""

import csv

import pytest

from repro.bench import ExperimentTable, format_table, save_table
from repro.bench.harness import geometric_mean, speedup_series


def test_table_add_and_column():
    t = ExperimentTable("exp", ["a", "b"])
    t.add(1, 2.0)
    t.add(3, 4.0)
    assert t.column("a") == [1, 3]
    assert t.column("b") == [2.0, 4.0]


def test_row_width_checked():
    t = ExperimentTable("exp", ["a", "b"])
    with pytest.raises(ValueError):
        t.add(1)


def test_format_contains_everything():
    t = ExperimentTable("fig_x", ["graph", "time_s"], notes="shape only")
    t.add("rmat", 0.125)
    text = format_table(t)
    assert "fig_x" in text and "shape only" in text
    assert "rmat" in text and "0.125" in text


def test_save_and_reload(tmp_path):
    t = ExperimentTable("t1", ["k", "v"])
    t.add("x", 1.5)
    path = save_table(t, tmp_path)
    with open(path) as f:
        rows = list(csv.reader(f))
    assert rows[0] == ["k", "v"]
    assert rows[1] == ["x", "1.5"]


def test_emit_prints_and_saves(tmp_path, capsys):
    t = ExperimentTable("t2", ["k"])
    t.add(42)
    path = t.emit(tmp_path)
    out = capsys.readouterr().out
    assert "t2" in out and path.endswith("t2.csv")


def test_speedup_series():
    s = speedup_series({1: 10.0, 2: 5.0, 4: 2.5})
    assert s == {1: 1.0, 2: 2.0, 4: 4.0}
    assert speedup_series({}) == {}


def test_geometric_mean():
    import numpy as np

    assert geometric_mean(np.array([1.0, 4.0])) == pytest.approx(2.0)
    assert geometric_mean(np.array([])) == 0.0
    assert geometric_mean(np.array([0.0, 2.0])) == pytest.approx(2.0)
