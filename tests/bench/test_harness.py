"""Bench harness helpers."""

import numpy as np
import pytest

from repro.bench.harness import PartitionRun, run_xtrapulp
from repro.core import PulpParams
from repro.graph import rmat
from repro.suite import SUITE


def test_run_xtrapulp_uses_recommended_init():
    g = rmat(8, 10, seed=1)
    run = run_xtrapulp(g, "randhd", 4, 2)  # randhd recommends block init
    assert isinstance(run, PartitionRun)
    assert run.partitioner == "XtraPuLP"
    assert run.num_parts == 4 and run.nprocs == 2
    assert run.modeled_seconds > 0
    assert run.comm_bytes > 0
    assert SUITE["randhd"].recommended_init == "block"


def test_run_xtrapulp_unknown_graph_name_defaults():
    g = rmat(8, 10, seed=1)
    run = run_xtrapulp(g, "not-in-suite", 4, 2)
    assert run.quality.cut_ratio <= 1.0


def test_run_xtrapulp_single_objective_flag():
    g = rmat(8, 10, seed=1)
    full = run_xtrapulp(g, "rmat", 4, 2)
    single = run_xtrapulp(g, "rmat", 4, 2, single_objective=True)
    assert single.modeled_seconds < full.modeled_seconds


def test_run_xtrapulp_explicit_params():
    g = rmat(8, 10, seed=1)
    run = run_xtrapulp(
        g, "rmat", 4, 2, params=PulpParams(outer_iters=1, seed=3)
    )
    assert run.quality.vertex_balance > 0
