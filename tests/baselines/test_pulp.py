"""Shared-memory PuLP baseline."""

import numpy as np
import pytest

from repro.baselines import pulp
from repro.baselines.pulp_shared import SHARED_MEMORY_NODE
from repro.core import PulpParams, xtrapulp
from repro.graph import rmat, webcrawl


@pytest.fixture(scope="module")
def g():
    return rmat(11, 16, seed=1)


def test_pulp_valid_partition(g):
    res = pulp(g, 8, threads=4)
    assert res.parts.shape == (g.n,)
    q = res.quality()
    assert q.vertex_balance <= 1.25


def test_pulp_uses_shared_memory_machine(g):
    res = pulp(g, 4, threads=4)
    assert res.machine is SHARED_MEMORY_NODE
    assert res.params.shared_memory


def test_pulp_no_network_cheaper_than_distributed(g):
    from repro.simmpi.timing import TimeModel

    shared = pulp(g, 8, threads=4)
    dist = xtrapulp(g, 8, nprocs=4)
    # same engine, but the shared-memory machine has ~no network: the
    # communication share of the modeled time must be far smaller
    def comm_time(res):
        b = TimeModel(res.machine).breakdown(res.stats)
        return b["latency"] + b["bandwidth"]

    assert comm_time(shared) < 0.5 * comm_time(dist)


def test_pulp_single_objective(g):
    res = pulp(g, 4, threads=2, single_objective=True)
    tags = {e.tag for e in res.stats.events}
    assert "edge_balance" not in tags


def test_pulp_deterministic(g):
    a = pulp(g, 4, threads=4, seed=3)
    b = pulp(g, 4, threads=4, seed=3)
    np.testing.assert_array_equal(a.parts, b.parts)


def test_pulp_custom_params():
    g2 = webcrawl(1024, 12, seed=2)
    res = pulp(g2, 4, params=PulpParams(outer_iters=1, seed=0), threads=2)
    assert res.params.shared_memory  # flag forced on despite custom params
    assert res.parts.min() >= 0
