"""Property tests for the baseline partitioners."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    edge_block_partition,
    random_partition,
    vertex_block_partition,
)
from repro.baselines.multilevel import MultilevelResourceError, multilevel_partition
from repro.core.quality import vertex_balance
from repro.graph import from_edges


@st.composite
def graphs(draw, max_n=40, max_m=120):
    n = draw(st.integers(min_value=4, max_value=max_n))
    m = draw(st.integers(min_value=n, max_value=max_m))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    return from_edges(
        n, rng.integers(0, n, size=m), rng.integers(0, n, size=m)
    )


@settings(max_examples=40, deadline=None)
@given(graphs(), st.integers(min_value=1, max_value=6))
def test_simple_partitioners_cover_and_range(g, p):
    p = min(p, g.n)
    for fn in (lambda: random_partition(g, p, seed=0),
               lambda: vertex_block_partition(g, p),
               lambda: edge_block_partition(g, p)):
        parts = fn()
        assert parts.shape == (g.n,)
        assert parts.min() >= 0 and parts.max() < p


@settings(max_examples=40, deadline=None)
@given(graphs(), st.integers(min_value=2, max_value=5))
def test_vertex_block_always_near_perfectly_balanced(g, p):
    p = min(p, g.n)
    parts = vertex_block_partition(g, p)
    counts = np.bincount(parts, minlength=p)
    assert counts.max() - counts.min() <= 1
    assert vertex_balance(g, parts, p) >= 1.0


@settings(max_examples=15, deadline=None)
@given(graphs(max_n=30, max_m=90), st.integers(min_value=2, max_value=4))
def test_multilevel_valid_on_arbitrary_graphs(g, p):
    p = min(p, g.n)
    try:
        r = multilevel_partition(g, p, seed=0)
    except MultilevelResourceError:
        return  # legitimate failure mode
    assert r.parts.shape == (g.n,)
    assert r.parts.min() >= 0 and r.parts.max() < p
    assert np.bincount(r.parts, minlength=p).sum() == g.n
