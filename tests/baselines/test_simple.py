"""Random / vertex-block / edge-block partitioning."""

import numpy as np
import pytest

from repro.baselines import (
    edge_block_partition,
    random_partition,
    vertex_block_partition,
)
from repro.core.quality import (
    edge_counts,
    edge_cut_ratio,
    vertex_balance,
)
from repro.graph import rmat, star, webcrawl, ring


def test_random_partition_range_and_seed():
    g = rmat(9, 12, seed=1)
    a = random_partition(g, 7, seed=3)
    b = random_partition(g, 7, seed=3)
    c = random_partition(g, 7, seed=4)
    np.testing.assert_array_equal(a, b)
    assert not np.array_equal(a, c)
    assert a.min() >= 0 and a.max() < 7


def test_random_partition_cut_near_theory():
    # expected cut ratio ≈ (p-1)/p (the paper's reference point)
    g = rmat(11, 16, seed=2)
    for p in (2, 8):
        ratio = edge_cut_ratio(g, random_partition(g, p, seed=0), p)
        assert ratio == pytest.approx((p - 1) / p, abs=0.03)


def test_vertex_block_balanced_vertices():
    g = rmat(9, 12, seed=1)
    parts = vertex_block_partition(g, 6)
    assert vertex_balance(g, parts, 6) <= 1.01
    # contiguous ids
    assert np.all(np.diff(parts) >= 0)


def test_edge_block_balanced_edges():
    g = webcrawl(4096, 16, seed=2)
    parts = edge_block_partition(g, 8)
    counts = edge_counts(g, parts, 8)
    assert counts.max() / (counts.sum() / 8) < 1.3
    assert np.all(np.diff(parts) >= 0)  # still contiguous


def test_edge_block_on_star():
    # the hub dominates: its block must absorb nearly all edges
    g = star(100)
    parts = edge_block_partition(g, 4)
    counts = edge_counts(g, parts, 4)
    assert counts[parts[0]] >= counts.sum() / 2


def test_block_partitions_exploit_crawl_locality():
    g = webcrawl(4096, 16, seed=5)
    p = 8
    block = edge_cut_ratio(g, vertex_block_partition(g, p), p)
    rand = edge_cut_ratio(g, random_partition(g, p, seed=0), p)
    assert block < 0.5 * rand  # the WDC12 signature from §V.B


def test_validation():
    g = ring(6)
    for fn in (random_partition, vertex_block_partition, edge_block_partition):
        with pytest.raises(ValueError):
            fn(g, 0)


def test_edge_block_zero_edges_falls_back():
    from repro.graph import from_edges

    g = from_edges(5, np.array([], dtype=int), np.array([], dtype=int))
    parts = edge_block_partition(g, 2)
    assert vertex_balance(g, parts, 2) <= 1.2
