"""Multilevel partitioner (ParMETIS/KaHIP stand-ins)."""

import numpy as np
import pytest

from repro.baselines import MultilevelResourceError, multilevel_partition
from repro.baselines.multilevel import (
    _contract,
    _graph_growing,
    _heavy_edge_matching,
)
from repro.core.quality import edge_cut_ratio, vertex_balance
from repro.graph import from_edges, mesh3d, rmat, ring, rand_hd, webcrawl
from repro.graph.builders import to_scipy


def test_partition_valid_and_balanced():
    g = mesh3d(10, 10, 10)
    r = multilevel_partition(g, 8, seed=0)
    assert r.parts.shape == (g.n,)
    assert set(np.unique(r.parts)) <= set(range(8))
    assert vertex_balance(g, r.parts, 8) <= 1.04  # 3% constraint + rounding


def test_mesh_cut_quality():
    g = mesh3d(12, 12, 12)
    r = multilevel_partition(g, 8, seed=0)
    assert edge_cut_ratio(g, r.parts, 8) < 0.35


def test_high_quality_mode_coarsens_with_lp():
    g = mesh3d(10, 10, 10)
    d = multilevel_partition(g, 4, quality="default", seed=0)
    h = multilevel_partition(g, 4, quality="high", seed=0)
    assert d.quality_mode == "default" and h.quality_mode == "high"
    assert h.levels >= 2 and d.levels >= 2


def test_hierarchy_recorded():
    g = mesh3d(10, 10, 10)
    r = multilevel_partition(g, 4, seed=0)
    ns = [n for n, _ in r.history]
    assert ns[0] == g.n
    assert all(ns[i] > ns[i + 1] for i in range(len(ns) - 1))
    assert r.coarsest_n == ns[-1]


def test_deterministic():
    g = rmat(10, 12, seed=2)
    a = multilevel_partition(g, 4, seed=5)
    b = multilevel_partition(g, 4, seed=5)
    np.testing.assert_array_equal(a.parts, b.parts)


def test_skewed_graph_still_partitions():
    g = rmat(11, 16, seed=1)
    r = multilevel_partition(g, 8, seed=0)
    assert vertex_balance(g, r.parts, 8) <= 1.05


def test_validation():
    g = ring(8)
    with pytest.raises(ValueError):
        multilevel_partition(g, 0)
    with pytest.raises(ValueError):
        multilevel_partition(g, 9)
    with pytest.raises(ValueError):
        multilevel_partition(g, 2, quality="ultra")


def test_memory_budget_failure():
    g = rmat(11, 16, seed=1)
    with pytest.raises(MultilevelResourceError):
        multilevel_partition(g, 4, memory_budget_factor=0.5, seed=0)


def test_budget_error_reports_level_and_allocation():
    g = rmat(11, 16, seed=1)
    with pytest.raises(MultilevelResourceError) as exc:
        multilevel_partition(g, 4, memory_budget_factor=0.5, seed=0)
    err = exc.value
    # the error pinpoints WHERE the hierarchy refused to fit: the level
    # being built and the coarse-edge allocation that overflowed
    assert err.level >= 1
    assert err.requested > 0
    assert f"level {err.level}" in str(err)
    assert str(err.requested) in str(err)
    assert "budget" in str(err)


def test_stagnation_error_reports_level_and_allocation():
    # a near-edgeless graph: matching merges almost nothing, so
    # coarsening stagnates far above the coarsest target
    n = 3000
    srcs = np.arange(0, 40, 2)
    dsts = np.arange(1, 40, 2)
    g = from_edges(n, srcs, dsts)
    with pytest.raises(MultilevelResourceError) as exc:
        multilevel_partition(g, 2, seed=0)
    err = exc.value
    assert err.level == 1
    assert err.requested >= 0
    assert "stagnated" in str(err)
    assert f"level {err.level}" in str(err)


def test_kernels_are_shared_with_the_distributed_coarsener():
    # the baseline's matching/contraction are re-exports of the kernels
    # module the distributed subsystem uses — the same objects, so the
    # two coarseners can never drift apart
    from repro.multilevel import kernels

    assert _heavy_edge_matching is kernels.heavy_edge_matching
    assert _contract is kernels.contract


def test_matching_produces_valid_pairing():
    g = mesh3d(6, 6, 6)
    adj = to_scipy(g)
    rng = np.random.default_rng(0)
    labels = _heavy_edge_matching(adj, rng)
    # each label group has size 1 or 2
    _, counts = np.unique(labels, return_counts=True)
    assert counts.max() <= 2
    # matching shrinks the mesh substantially
    assert (counts == 2).sum() * 2 > 0.5 * g.n


def test_contract_preserves_total_vertex_weight():
    g = ring(10)
    adj = to_scipy(g)
    vw = np.ones(10)
    labels = np.array([0, 0, 1, 1, 2, 2, 3, 3, 4, 4])
    coarse, cvw, mapping = _contract(adj, vw, labels)
    assert coarse.shape == (5, 5)
    assert cvw.sum() == 10
    np.testing.assert_array_equal(mapping, labels)
    # contracted ring of pairs is a 5-ring with edge weight 1 per side
    assert coarse.nnz == 10


def test_graph_growing_covers_all():
    g = mesh3d(6, 6, 6)
    adj = to_scipy(g)
    parts = _graph_growing(adj, np.ones(g.n), 4, np.random.default_rng(1))
    assert parts.min() >= 0 and parts.max() < 4
    counts = np.bincount(parts, minlength=4)
    assert counts.min() > 0


def test_ring_cut_is_near_optimal():
    g = ring(64)
    r = multilevel_partition(g, 4, seed=1)
    # optimal is 4 cut edges; accept a small factor
    assert edge_cut_ratio(g, r.parts, 4) * g.num_edges <= 12


def test_randhd_good_cut():
    g = rand_hd(2048, 8, seed=1)
    r = multilevel_partition(g, 8, seed=0)
    assert edge_cut_ratio(g, r.parts, 8) < 0.15


def test_webcrawl_completes():
    g = webcrawl(2048, 16, seed=1)
    r = multilevel_partition(g, 8, seed=0)
    assert vertex_balance(g, r.parts, 8) <= 1.06
